package vsa

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/span"
)

// assertMultiMatchesStandalone compares every member relation of a fused
// evaluation against the member automaton's own standalone Eval — the
// demultiplexing contract Multi promises.
func assertMultiMatchesStandalone(t *testing.T, m *Multi, doc string) {
	t.Helper()
	rels := m.Eval(doc)
	if len(rels) != m.Len() {
		t.Fatalf("Eval returned %d relations for %d members", len(rels), m.Len())
	}
	for i, got := range rels {
		want := m.Member(i).Eval(doc)
		if !got.Equal(want) {
			t.Errorf("member %d on %q:\nfused:      %v\nstandalone: %v", i, doc, got, want)
		}
	}
}

// extractorBlowup builds Σ*·x{a·(a|b)^k}·Σ*: the classic
// subset-construction blowup (the scan DFA must remember which of the
// last k positions held an 'a'), so the fused lazy DFA overflows its
// state bound on long random a/b documents. The span has fixed length
// k+1, which keeps the whole-document fallback simulation linear.
func extractorBlowup(k int) *Automaton {
	a := NewAutomaton("x")
	a.AddEdge(0, 0, alphabet.Any, 0)
	prev := a.AddState()
	a.AddEdge(0, Open(0), alphabet.Of('a'), prev)
	for i := 1; i < k; i++ {
		next := a.AddState()
		a.AddEdge(prev, 0, alphabet.Of('a'), next)
		a.AddEdge(prev, 0, alphabet.Of('b'), next)
		prev = next
	}
	post := a.AddState()
	a.AddEdge(prev, Close(0), alphabet.Of('a'), post)
	a.AddEdge(prev, Close(0), alphabet.Of('b'), post)
	a.AddFinal(post, 0)
	a.AddEdge(post, 0, alphabet.Any, post)
	return a
}

// buildUnanchoredCD is buildUnanchoredAB over the letters c/d: a
// factor-bearing shape ("cd") whose scan skips between occurrences.
func buildUnanchoredCD(t *testing.T) *Automaton {
	t.Helper()
	a := NewAutomaton("x")
	mid := a.AddState()
	post := a.AddState()
	a.AddEdge(0, 0, alphabet.Any, 0)
	a.AddEdge(0, Open(0), alphabet.Of('c'), mid)
	a.AddEdge(mid, Close(0), alphabet.Of('d'), post)
	a.AddFinal(post, 0)
	a.AddEdge(post, 0, alphabet.Any, post)
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return a
}

// buildNonLocalizable hand-builds the status-conflicted automaton of
// TestWindowedEvalNonLocalizableFallsBack: Multi must route it through
// the solo (standalone) path.
func buildNonLocalizable(t *testing.T) *Automaton {
	t.Helper()
	a := NewAutomaton("x")
	mid := a.AddState()
	a.AddEdge(0, Open(0), alphabet.Of('a'), mid)
	a.AddEdge(0, 0, alphabet.Of('b'), mid)
	a.AddEdge(mid, Close(0), alphabet.Of('c'), mid)
	a.AddFinal(mid, 0)
	if loc := a.localizer(); loc.ok {
		t.Fatal("status-conflicted automaton must not localize")
	}
	return a
}

// buildAnchoredCD is buildAnchoredAB over the letters c/d: a second
// mandatory factor ("cd") disjoint from "ab", for admission-mask tests.
func buildAnchoredCD(t *testing.T) *Automaton {
	t.Helper()
	a := NewAutomaton("x")
	mid := a.AddState()
	post := a.AddState()
	a.AddEdge(0, Open(0), alphabet.Of('c'), mid)
	a.AddEdge(mid, Close(0), alphabet.Of('d'), post)
	a.AddFinal(post, 0)
	a.AddEdge(post, 0, alphabet.Any, post)
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return a
}

// buildEmptyLanguage builds an automaton whose language is empty (its
// only final state is unreachable): a degenerate but legal member.
func buildEmptyLanguage() *Automaton {
	a := NewAutomaton("x")
	a.AddEdge(0, 0, alphabet.Any, 0)
	orphan := a.AddState()
	a.AddFinal(orphan, 0)
	return a
}

// TestMultiMatchesStandalone is the core table-driven differential:
// heterogeneous member sets over documents exercising empty input,
// matches at both ends, checkpoint-stride straddling and no-match
// documents must demultiplex byte-identically to per-member Eval.
func TestMultiMatchesStandalone(t *testing.T) {
	long := strings.Repeat(".", 3*checkpointStride)
	docs := []string{
		"",
		"a",
		"ab",
		"aa.bb.aa",
		"xxaxxbxx",
		long,
		long + "aab" + long,
		"a" + long + "b",
		long + "a" + long + "b" + long + "ab",
		strings.Repeat("ab", 2*checkpointStride),
	}
	cases := []struct {
		name    string
		members []*Automaton
	}{
		{"four-shapes", []*Automaton{
			extractorAPlus(), extractorPrefixAnchored(),
			extractorSuffixAnchored(), extractorZeroWidth(),
		}},
		{"single", []*Automaton{extractorAPlus()}},
		{"factor-pair", []*Automaton{buildUnanchoredAB(t), extractorZeroWidth()}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := NewMulti(c.members...)
			for _, doc := range docs {
				assertMultiMatchesStandalone(t, m, doc)
			}
		})
	}
}

// TestMultiDuplicateMembers: the same query registered several times in
// one batch (the same pointer twice AND a structurally identical twin)
// must yield the identical relation in every slot.
func TestMultiDuplicateMembers(t *testing.T) {
	a := extractorAPlus()
	twin := extractorAPlus()
	m := NewMulti(a, a, twin)
	for _, doc := range []string{"", "aa.bb.aa", "xxaxx"} {
		rels := m.Eval(doc)
		want := a.Eval(doc)
		for i, got := range rels {
			if !got.Equal(want) {
				t.Errorf("duplicate slot %d on %q: %v != %v", i, doc, got, want)
			}
		}
	}
}

// TestMultiEmptyLanguageMember: a member accepting nothing, mixed with
// matching siblings, must come back empty without disturbing them.
func TestMultiEmptyLanguageMember(t *testing.T) {
	empty := buildEmptyLanguage()
	m := NewMulti(empty, extractorAPlus(), extractorZeroWidth())
	for _, doc := range []string{"", "ab", "aa.bb"} {
		assertMultiMatchesStandalone(t, m, doc)
		if got := m.Eval(doc)[0]; got.Len() != 0 {
			t.Errorf("empty-language member matched %v on %q", got, doc)
		}
	}
}

// TestMultiZeroWidthSameOffset: two queries producing zero-width spans
// at the same document offset must each receive their own copy of the
// tuple from the shared pass.
func TestMultiZeroWidthSameOffset(t *testing.T) {
	m := NewMulti(extractorZeroWidth(), extractorZeroWidth())
	doc := "xbxxb"
	rels := m.Eval(doc)
	want := extractorZeroWidth().Eval(doc)
	if want.Len() == 0 {
		t.Fatal("oracle found no zero-width matches")
	}
	for i, got := range rels {
		if !got.Equal(want) {
			t.Errorf("zero-width member %d: %v != %v", i, got, want)
		}
	}
}

// TestMultiAdmissionSkipsSibling: a member whose mandatory factor is
// absent is skipped by the admission bitmap (counted in AdmissionSkips)
// while its siblings still match at full strength.
func TestMultiAdmissionSkipsSibling(t *testing.T) {
	ab := buildUnanchoredAB(t)
	if f := ab.Prefilter().Factor; f != "ab" {
		t.Fatalf("precondition: factor %q, want \"ab\"", f)
	}
	m := NewMulti(ab, extractorAPlus())
	var mm MultiMetrics
	m.SetMetrics(&mm)

	doc := "a.a.a" // has 'a' matches, no "ab" factor
	assertMultiMatchesStandalone(t, m, doc)
	if got := mm.AdmissionSkips.Load(); got == 0 {
		t.Error("admission gate never skipped the factor-less member")
	}
	rels := m.Eval(doc)
	if rels[0].Len() != 0 {
		t.Errorf("skipped member returned tuples: %v", rels[0])
	}
	if rels[1].Len() == 0 {
		t.Error("sibling of a skipped member lost its matches")
	}

	// Both factors present: both admitted, both match.
	assertMultiMatchesStandalone(t, m, "x.ab.a")
}

// TestMultiAdmissionAllRejected: when every member's factor is absent
// the group is never scanned at all (FusedPasses stays zero).
func TestMultiAdmissionAllRejected(t *testing.T) {
	m := NewMulti(buildUnanchoredAB(t), buildAnchoredCD(t))
	var mm MultiMetrics
	m.SetMetrics(&mm)
	doc := strings.Repeat("z", 4096)
	assertMultiMatchesStandalone(t, m, doc)
	if got := mm.FusedPasses.Load(); got != 0 {
		t.Errorf("fully rejected document still ran %d fused passes", got)
	}
	if got := mm.AdmissionSkips.Load(); got != 2 {
		t.Errorf("AdmissionSkips = %d, want 2", got)
	}
}

// TestMultiStartStateCache: each distinct admission mask interns one
// fused start state, cached across evaluations.
func TestMultiStartStateCache(t *testing.T) {
	m := NewMulti(buildUnanchoredAB(t), buildAnchoredCD(t))
	docs := []string{
		"zabz.cdz", // both admitted (mask 11, pre-interned at build)
		"zabz",     // AB only (mask 01)
		"cdzz",     // CD only (mask 10)
		"zzzz",     // neither: early return, no start state
	}
	for range 3 { // repeats must hit the cache, not grow it
		for _, doc := range docs {
			assertMultiMatchesStandalone(t, m, doc)
		}
	}
	if len(m.groups) != 1 {
		t.Fatalf("want 1 group, got %d", len(m.groups))
	}
	g := m.groups[0]
	g.mu.Lock()
	n := len(g.starts)
	g.mu.Unlock()
	if n != 3 {
		t.Errorf("start-state cache holds %d masks, want 3 (full, AB-only, CD-only)", n)
	}
}

// TestMultiSoloNonLocalizable: a member without a localizer is routed
// to the solo list and evaluated standalone (counted as a fallback),
// while localizable siblings still share one fused pass.
func TestMultiSoloNonLocalizable(t *testing.T) {
	m := NewMulti(buildNonLocalizable(t), extractorAPlus())
	var mm MultiMetrics
	m.SetMetrics(&mm)
	m.Prepare()
	if len(m.solo) != 1 || m.solo[0] != 0 {
		t.Fatalf("solo = %v, want [0]", m.solo)
	}
	if len(m.groups) != 1 || len(m.groups[0].members) != 1 {
		t.Fatalf("localizable sibling not fused into its own group")
	}
	for _, doc := range []string{"", "ac", "bc", "acc.a"} {
		assertMultiMatchesStandalone(t, m, doc)
	}
	if got := mm.MemberFallbacks.Load(); got == 0 {
		t.Error("solo member never counted as a fallback")
	}
	if got := mm.FusedPasses.Load(); got == 0 {
		t.Error("localizable sibling never took the fused pass")
	}
}

// TestMultiOverflowGroupFallback: a subset-blowup member overflows the
// fused DFA's state bound mid-document; the whole group must fall back
// to standalone evaluation, byte-identically, mid-batch.
func TestMultiOverflowGroupFallback(t *testing.T) {
	blowup := extractorBlowup(16)
	m := NewMulti(blowup, extractorAPlus())
	var mm MultiMetrics
	m.SetMetrics(&mm)
	rng := rand.New(rand.NewSource(42))
	var b strings.Builder
	for i := 0; i < 1<<14; i++ {
		b.WriteByte("ab"[rng.Intn(2)])
	}
	doc := b.String()
	assertMultiMatchesStandalone(t, m, doc)
	if got := mm.MemberFallbacks.Load(); got < 2 {
		t.Errorf("MemberFallbacks = %d, want both admitted members to fall back on fused overflow", got)
	}
	// A harmless document afterwards must still evaluate (the overflowed
	// DFA stays overflowed; the group keeps falling back, correctly).
	assertMultiMatchesStandalone(t, m, "aab.bba")
}

// TestMultiSkipAndNoSkip: the fused trigger-byte skip loop engages on
// sparse documents, and one member's DisablePrefilter call disables it
// for the whole group — in both modes results match the standalone
// evaluations exactly.
func TestMultiSkipAndNoSkip(t *testing.T) {
	gap := strings.Repeat(".", 1<<12)
	doc := gap + "ab" + gap + "cd" + gap

	skip := NewMulti(buildUnanchoredAB(t), buildUnanchoredCD(t))
	var sm MultiMetrics
	skip.SetMetrics(&sm)
	assertMultiMatchesStandalone(t, skip, doc)
	skip.Prepare()
	if skip.groups[0].noSkip {
		t.Fatal("prefilter-enabled group built with noSkip")
	}
	if got := sm.FusedSkippedBytes.Load(); got == 0 {
		t.Error("fused skip loop never jumped on a sparse document")
	}

	dis := buildUnanchoredAB(t)
	dis.DisablePrefilter()
	step := NewMulti(dis, buildUnanchoredCD(t))
	var nm MultiMetrics
	step.SetMetrics(&nm)
	assertMultiMatchesStandalone(t, step, doc)
	step.Prepare()
	if !step.groups[0].noSkip {
		t.Fatal("DisablePrefilter member did not force the stepped fused scan")
	}
	if got := nm.FusedSkippedBytes.Load(); got != 0 {
		t.Errorf("stepped group skipped %d bytes", got)
	}
}

// TestMultiManyMembersSplitIntoGroups: more than maxGroupMembers fused
// members must be chunked into several groups, each demultiplexing
// correctly.
func TestMultiManyMembersSplitIntoGroups(t *testing.T) {
	var members []*Automaton
	for i := 0; i < maxGroupMembers+6; i++ {
		if i%2 == 0 {
			members = append(members, extractorAPlus())
		} else {
			members = append(members, extractorZeroWidth())
		}
	}
	m := NewMulti(members...)
	m.Prepare()
	if len(m.groups) != 2 {
		t.Fatalf("want 2 groups for %d members, got %d", len(members), len(m.groups))
	}
	assertMultiMatchesStandalone(t, m, "aa.bb.aa")
}

// TestMultiEvalAppend: the accumulator form shifts by `by`, carves from
// the arena, and requests relations lazily — an admitted member with no
// candidate match ends never has its relation created.
func TestMultiEvalAppend(t *testing.T) {
	dis := extractorAPlus()
	dis.DisablePrefilter() // always admitted, even with no 'a' in the doc
	m := NewMulti(dis, extractorZeroWidth())
	doc := "bbxbb" // zero-width matches; a+ has no candidate ends
	by := span.Span{Start: 101, End: 101 + len(doc)}

	var arena span.TupleArena
	rels := make([]*span.Relation, m.Len())
	requested := 0
	m.EvalAppend(doc, by, func(i int) *span.Relation {
		requested++
		if rels[i] == nil {
			rels[i] = span.NewRelation(m.Member(i).Vars...)
		}
		return rels[i]
	}, &arena)

	if rels[0] != nil {
		t.Errorf("member with no candidate ends had its relation created: %v", rels[0])
	}
	if requested == 0 || rels[1] == nil {
		t.Fatal("matching member never requested its relation")
	}
	want := span.NewRelation(m.Member(1).Vars...)
	m.Member(1).EvalAppend(doc, by, want, nil)
	rels[1].Dedupe()
	want.Dedupe()
	if !rels[1].Equal(want) {
		t.Errorf("shifted EvalAppend: fused %v != standalone %v", rels[1], want)
	}
}

// TestMultiEvalAppendArityPanic: handing a member a relation of the
// wrong arity must panic, mirroring Automaton.EvalAppend's contract.
func TestMultiEvalAppendArityPanic(t *testing.T) {
	m := NewMulti(extractorAPlus())
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch did not panic")
		}
	}()
	bad := span.NewRelation("x", "y")
	m.EvalAppend("aa", span.Span{Start: 1, End: 3}, func(int) *span.Relation { return bad }, nil)
}

// TestNewMultiEmptyPanics pins the constructor contract.
func TestNewMultiEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMulti() did not panic")
		}
	}()
	NewMulti()
}

// TestMultiAccessors covers Len/Member and metric counters on a plain
// matching evaluation.
func TestMultiAccessors(t *testing.T) {
	a, b := extractorAPlus(), extractorZeroWidth()
	m := NewMulti(a, b)
	if m.Len() != 2 || m.Member(0) != a || m.Member(1) != b {
		t.Fatal("Len/Member disagree with construction")
	}
	var mm MultiMetrics
	m.SetMetrics(&mm)
	doc := "aa.bb"
	rels := m.Eval(doc)
	wantTuples := uint64(rels[0].Len() + rels[1].Len())
	if wantTuples == 0 {
		t.Fatal("oracle expected matches")
	}
	if got := mm.FusedPasses.Load(); got != 1 {
		t.Errorf("FusedPasses = %d, want 1", got)
	}
	if got := mm.FusedBytes.Load(); got != uint64(len(doc)) {
		t.Errorf("FusedBytes = %d, want %d", got, len(doc))
	}
	if got := mm.DemuxTuples.Load(); got != wantTuples {
		t.Errorf("DemuxTuples = %d, want %d", got, wantTuples)
	}
}

// TestMultiConcurrent hammers one shared Multi from many goroutines so
// the race detector sees the fused DFA, skip cache and start-state map
// being built and read concurrently.
func TestMultiConcurrent(t *testing.T) {
	m := NewMulti(extractorAPlus(), buildUnanchoredAB(t), extractorZeroWidth())
	long := strings.Repeat(".", 2*checkpointStride)
	docs := []string{"", "ab", long + "aab" + long, "aa.bb", long}
	want := make([][]int, len(docs))
	for d, doc := range docs {
		want[d] = make([]int, m.Len())
		for i := 0; i < m.Len(); i++ {
			want[d][i] = m.Member(i).Eval(doc).Len()
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				d := (g + i) % len(docs)
				rels := m.Eval(docs[d])
				for q, r := range rels {
					if r.Len() != want[d][q] {
						t.Errorf("goroutine %d: member %d on doc %d: %d tuples, want %d",
							g, q, d, r.Len(), want[d][q])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// FuzzMultiVsMembers fuzzes the fused evaluation against per-member
// standalone Eval on random functional automata (the generator of
// dfa_test.go): the in-package complement of the formula-level
// differential in parallel.FuzzMultiVsSequential.
func FuzzMultiVsMembers(f *testing.F) {
	f.Add(int64(1), int64(2), "abab")
	f.Add(int64(3), int64(4), "")
	f.Add(int64(5), int64(6), strings.Repeat("c", 2*checkpointStride)+"ab")
	f.Fuzz(func(t *testing.T, seedA, seedB int64, doc string) {
		if len(doc) > 1<<12 {
			doc = doc[:1<<12]
		}
		a := randomAutomaton(rand.New(rand.NewSource(seedA)))
		b := randomAutomaton(rand.New(rand.NewSource(seedB)))
		if a.Validate() != nil || b.Validate() != nil {
			t.Skip()
		}
		m := NewMulti(a, b, a)
		rels := m.Eval(doc)
		for i, got := range rels {
			want := m.Member(i).Eval(doc)
			if !got.Equal(want) {
				t.Fatalf("member %d diverged on %q:\nfused:      %v\nstandalone: %v\n%s",
					i, doc, got, want, m.Member(i))
			}
		}
	})
}
