// Package parallel implements the split-then-distribute evaluation that
// motivates the paper (Section 1): once a spanner is known to be
// split-correct for a splitter, it can be evaluated on the splitter's
// segments in parallel (or the segments can be scheduled as many small
// tasks), and the shifted union of the results equals the direct
// evaluation. The engine is a work-stealing executor (executor.go):
// segments are dealt in chunks to per-worker deques, idle workers steal
// from the back of busy ones, and every worker accumulates shifted
// result tuples into its own arena-backed relation, merged and
// offset-sorted once at the end. Results are therefore deterministic —
// byte-identical across worker counts and steal schedules — and no
// relation is allocated per segment or per batch.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/span"
	"repro/internal/vsa"
)

// Sequential evaluates p directly on the document — the baseline the
// split evaluators are measured against and fuzz-checked to agree with.
func Sequential(p *vsa.Automaton, doc string) *span.Relation {
	return p.Eval(doc)
}

// Segment is a unit of split work: a span of the original document (or of
// the virtual concatenation of a collection) and its text.
type Segment struct {
	// Span locates Text in the enclosing document; result tuples of the
	// segment are shifted by it into document coordinates.
	Span span.Span
	// Text is the segment's content, Span.In(document).
	Text string
}

// SegmentsOf adapts pre-computed spans of doc into work units.
func SegmentsOf(doc string, spans []span.Span) []Segment {
	out := make([]Segment, len(spans))
	for i, sp := range spans {
		out[i] = Segment{sp, sp.In(doc)}
	}
	return out
}

// Options configures the context-aware split evaluators. The zero value
// selects GOMAXPROCS workers and an adaptive scheduling grain.
type Options struct {
	// Workers is the number of evaluation goroutines; ≤ 0 means
	// runtime.GOMAXPROCS(0). The result does not depend on it.
	Workers int
	// Batch is the scheduling grain: the number of segments grouped into
	// one work-stealing chunk. Larger grains amortize scheduling on
	// segment-heavy splitters (N-grams, tokens); smaller grains steal
	// more finely. ≤ 0 selects an adaptive grain of roughly 32 chunks
	// per worker. The result does not depend on it.
	Batch int
	// Metrics, when non-nil, receives the executor's scheduling
	// statistics (steals, chunk/segment counts, worker busy time, merge
	// latency). nil disables all measurement. The result does not
	// depend on it.
	Metrics *ExecMetrics
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// grain resolves the chunk size for n segments: an explicit Batch wins;
// otherwise aim for ~32 chunks per worker, which keeps per-chunk
// scheduling cost (one mutex acquisition) negligible while leaving
// plenty of chunks to steal when match density is skewed.
func (o Options) grain(n int) int {
	if o.Batch > 0 {
		return o.Batch
	}
	g := n / (o.workers() * 32)
	if g < 1 {
		g = 1
	}
	if g > 1024 {
		g = 1024
	}
	return g
}

// streamGrain is the chunk-splitting grain of the channel-fed
// evaluators: a chunk arriving with more segments than this is halved
// onto the receiving worker's deque (where peers can steal it) until it
// fits. It matches the engine's default dispatch batch, so at that
// default engine traffic is never re-split; re-splitting a larger
// configured batch is harmless (the halves stay on, or near, the
// receiving worker).
const streamGrain = 16

// SplitEval evaluates ps on every segment using the given number of
// workers and returns the shifted, deduplicated union — the spanner
// (P_S ∘ S)(d) when the segments come from S. workers ≤ 0 means
// runtime.GOMAXPROCS(0). The result is sorted and deduplicated, and is
// byte-identical for every worker count (determinism does not depend on
// the steal schedule).
func SplitEval(ps *vsa.Automaton, segments []Segment, workers int) *span.Relation {
	rel, _ := SplitEvalCtx(context.Background(), ps, segments, Options{Workers: workers})
	return rel
}

// SplitEvalCtx is SplitEval with cancellation and an explicit grain: the
// segment chunks are dealt to the worker deques up front, workers stop
// between segments as soon as ctx is cancelled, and ctx's error is
// returned together with whatever partial relation the workers had
// accumulated (still sorted and deduplicated). With a never-cancelled
// context the result equals SplitEval's.
func SplitEvalCtx(ctx context.Context, ps *vsa.Automaton, segments []Segment, opts Options) (*span.Relation, error) {
	grain := opts.grain(len(segments))
	x := newExecutor(ctx, singleEval{ps}, opts.workers(), 1, grain, nil, opts.Metrics)
	x.deal(chunked(0, segments, grain, nil))
	rels := x.run()
	return rels[0], ctx.Err()
}

// SplitEvalBatches evaluates ps on batches of segments arriving on a
// channel — the streaming form used by the extraction engine, where the
// splitter discovers segments incrementally while earlier segments are
// already being evaluated. Idle workers block on the channel, so its
// capacity bounds the queued work and sends into batches block once the
// pool is saturated — the backpressure the serving daemon relies on to
// throttle ingestion. A received batch larger than the engine's dispatch
// grain is split onto the receiving worker's deque, where the other
// workers steal it. The merged relation is deduplicated and sorted, so
// the result is deterministic regardless of arrival order and steal
// schedule. On cancellation the workers drain nothing further and ctx's
// error is returned with the partial result. Only opts.Workers and
// opts.Metrics apply: the scheduling grain of this path is the arriving
// batch size (re-split at streamGrain).
func SplitEvalBatches(ctx context.Context, ps *vsa.Automaton, batches <-chan []Segment, opts Options) (*span.Relation, error) {
	recv := func(ctx context.Context) (chunk, bool) {
		select {
		case b, ok := <-batches:
			if !ok {
				return chunk{}, false
			}
			return chunk{dest: 0, segs: b}, true
		case <-ctx.Done():
			// Also unblocks workers whose producer is stalled (e.g. a
			// hung reader that will never close batches).
			return chunk{}, false
		}
	}
	x := newExecutor(ctx, singleEval{ps}, opts.workers(), 1, streamGrain, recv, opts.Metrics)
	rels := x.run()
	return rels[0], ctx.Err()
}

// CollectionEval evaluates p on every document of a collection (the
// Spark scenario of Section 1) with the given number of workers and
// returns one relation per document, in order. The documents are
// arbitrary, independent inputs — no splitter is involved and nothing
// about them needs to be "pre-split"; each is evaluated whole. Documents
// are dealt to the worker deques whole; work stealing keeps the pool
// busy when long documents cluster on one worker. Each returned relation
// is sorted and deduplicated, identical to p.Eval on that document.
// (To additionally split each document into segments for finer
// scheduling, use CollectionEvalSplit.)
func CollectionEval(p *vsa.Automaton, docsIn []string, workers int) []*span.Relation {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	x := newExecutor(context.Background(), singleEval{p}, workers, len(docsIn), 0, nil, nil)
	chunks := make([]chunk, len(docsIn))
	for i, d := range docsIn {
		chunks[i] = chunk{dest: i, segs: []Segment{{Span: span.Span{Start: 1, End: len(d) + 1}, Text: d}}}
	}
	x.deal(chunks)
	return x.run()
}

// CollectionEvalSplit evaluates a split-correct plan over a collection:
// each document is pre-split with splitFn and the segments of all
// documents form the task pool — the paper's observation that splitting
// helps even when the input is already a collection, by giving the
// scheduler many small tasks. Results are per-document relations, each
// sorted and deduplicated. A producer goroutine splits documents on
// demand and feeds the bounded channel the idle workers block on, so
// memory stays O(workers) documents' segments regardless of collection
// size; a long document's chunk is split across the deques by work
// stealing instead of serializing on one worker.
func CollectionEvalSplit(ps *vsa.Automaton, docsIn []string, splitFn func(string) []span.Span, workers int) []*span.Relation {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	feed := make(chan chunk, workers)
	go func() {
		// Producer: split one document at a time; the bounded feed
		// channel throttles splitting to the pool's consumption rate.
		defer close(feed)
		for i, d := range docsIn {
			feed <- chunk{dest: i, segs: SegmentsOf(d, splitFn(d))}
		}
	}()
	recv := func(ctx context.Context) (chunk, bool) {
		c, ok := <-feed
		return c, ok
	}
	x := newExecutor(context.Background(), singleEval{ps}, workers, len(docsIn), streamGrain, recv, nil)
	return x.run()
}

// Measurement is one timed run of an experiment configuration.
type Measurement struct {
	Name       string        // experiment label, echoed in errors
	Sequential time.Duration // direct (or whole-document) evaluation time
	Split      time.Duration // split-then-distribute evaluation time
	Speedup    float64       // Sequential / Split
	Tuples     int           // result size, summed over documents
}

// ErrSplitMismatch is returned by Measure and MeasureCollection when split
// and sequential evaluation disagree — the defining symptom of running a
// plan that is not split-correct for its splitter. The Measurement
// returned alongside it still carries the timings, so callers can report
// the failing configuration.
var ErrSplitMismatch = errors.New("parallel: split evaluation disagrees with sequential evaluation; the spanner is not split-correct for this splitter")

// Measure times sequential evaluation of p against split evaluation of ps
// over the segments, checks that the outputs agree, and reports the
// speedup. The comparison is the experiment of Section 1. If the outputs
// disagree the timings are returned together with an error wrapping
// ErrSplitMismatch — a library must not panic on data-dependent input.
func Measure(name string, p, ps *vsa.Automaton, doc string, segments []Segment, workers int) (Measurement, error) {
	t0 := time.Now()
	seq := Sequential(p, doc)
	seqDur := time.Since(t0)
	t1 := time.Now()
	par := SplitEval(ps, segments, workers)
	parDur := time.Since(t1)
	seq.Dedupe()
	m := Measurement{
		Name:       name,
		Sequential: seqDur,
		Split:      parDur,
		Speedup:    float64(seqDur) / float64(parDur),
		Tuples:     seq.Len(),
	}
	if !seq.Equal(par) {
		return m, fmt.Errorf("%s: %w", name, ErrSplitMismatch)
	}
	return m, nil
}

// MeasureCollection times whole-document scheduling against
// split-segment scheduling on a document collection with the same worker
// count, mirroring the paper's Spark experiments (Reuters, Amazon). Like
// Measure, a disagreement between the two schedules is reported as an
// error wrapping ErrSplitMismatch rather than a panic.
func MeasureCollection(name string, p, ps *vsa.Automaton, docsIn []string, splitFn func(string) []span.Span, workers int) (Measurement, error) {
	t0 := time.Now()
	whole := CollectionEval(p, docsIn, workers)
	wholeDur := time.Since(t0)
	t1 := time.Now()
	split := CollectionEvalSplit(ps, docsIn, splitFn, workers)
	splitDur := time.Since(t1)
	m := Measurement{
		Name:       name,
		Sequential: wholeDur,
		Split:      splitDur,
		Speedup:    float64(wholeDur) / float64(splitDur),
	}
	for i := range whole {
		whole[i].Dedupe()
		aligned, err := split[i].Project(whole[i].Vars)
		if err != nil {
			return m, fmt.Errorf("%s: document %d: %w", name, i, err)
		}
		if !aligned.Equal(whole[i]) {
			return m, fmt.Errorf("%s: document %d: %w", name, i, ErrSplitMismatch)
		}
		m.Tuples += whole[i].Len()
	}
	return m, nil
}

// SortSpans is a small helper for tests: sorts spans in document order.
func SortSpans(spans []span.Span) {
	sort.Slice(spans, func(i, j int) bool { return spans[i].Compare(spans[j]) < 0 })
}
