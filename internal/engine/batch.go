package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/parallel"
	"repro/internal/regexformula"
	"repro/internal/span"
	"repro/internal/vsa"
)

// BatchRequest names a registered multi-query set: N spanner formulas to
// be answered by one shared pass over each document (vsa.Multi). Like a
// single-plan Request, the batch is a plan-cache key: the fused
// automaton, the per-member compilations and their errors are memoized
// once and every later ExtractBatch with the same formula list reuses
// them, subject to the same LRU/byte/tenant budgets as single plans.
type BatchRequest struct {
	// Spanners are the member regex formulas, in result order. Duplicate
	// formulas are legal: they compile once and share one fused member,
	// and ExtractBatch reports the same relation in both slots.
	Spanners []string
	// Tenant scopes the cached batch plan exactly like Request.Tenant.
	Tenant string
}

// key is the batch plan-cache key. It deliberately starts with the
// literal "batch:" — a single-plan Request.key always starts with a
// decimal digit (the tenant length prefix) — so a fused plan can never
// alias a singleton plan's cache entry no matter what bytes the formulas
// contain. The remaining fields are length-prefixed like Request.key.
func (r BatchRequest) key() string {
	var b strings.Builder
	b.WriteString("batch:")
	fmt.Fprintf(&b, "%d:%s", len(r.Tenant), r.Tenant)
	for _, s := range r.Spanners {
		fmt.Fprintf(&b, "%d:%s", len(s), s)
	}
	return b.String()
}

// batchPlan is the fused side of a Plan: the member compilations, their
// per-slot errors, and the shared multi-query evaluator.
type batchPlan struct {
	req BatchRequest
	// members holds each distinct successfully-compiled formula's
	// automaton, in first-appearance order — the member order of multi.
	members []*vsa.Automaton
	// multi is the fused evaluator over members (nil when every formula
	// failed to compile).
	multi *vsa.Multi
	// slot maps each request slot to its index in members, or -1 when
	// that slot's formula failed to compile; errs then carries the error.
	// Duplicate formulas map to the same member index.
	slot []int
	errs []error
}

// IsBatch reports whether the plan is a fused multi-query plan (built by
// PlanBatch). Batch plans are evaluated with ExtractBatch; the
// single-document entry points (Extract, ExtractReader) do not accept
// them.
func (p *Plan) IsBatch() bool { return p.batch != nil }

// BatchLen returns the number of member-query slots of a batch plan
// (len(BatchRequest.Spanners)), or 0 for single plans.
func (p *Plan) BatchLen() int {
	if p.batch == nil {
		return 0
	}
	return len(p.batch.slot)
}

// BatchErr returns slot i's memoized compile error, or nil when the slot
// compiled (or the plan is not a batch plan). Per-member failures are
// part of the cached plan, not plan-level errors: one bad formula must
// not fail — or force recompilation of — its siblings.
func (p *Plan) BatchErr(i int) error {
	if p.batch == nil || i < 0 || i >= len(p.batch.errs) {
		return nil
	}
	return p.batch.errs[i]
}

// BatchVars returns slot i's output variables, or nil when the slot's
// formula failed to compile.
func (p *Plan) BatchVars(i int) []string {
	if p.batch == nil || i < 0 || i >= len(p.batch.slot) || p.batch.slot[i] < 0 {
		return nil
	}
	return append([]string(nil), p.batch.members[p.batch.slot[i]].Vars...)
}

// compileBatchPlan builds a fused plan: each formula compiles under its
// own panic guard, per-formula failures are recorded per slot (the batch
// itself still succeeds and is cached — the per-query-error contract),
// duplicate formulas are deduplicated into one member, and the distinct
// members fuse into one vsa.Multi. Like compilePlan it takes no context:
// it runs under the cache's single-flight on behalf of every coalesced
// waiter.
func compileBatchPlan(req BatchRequest) (*Plan, error) {
	if len(req.Spanners) == 0 {
		return nil, errors.New("engine: empty batch: no spanner formulas")
	}
	t0 := time.Now()
	b := &batchPlan{
		req:  req,
		slot: make([]int, len(req.Spanners)),
		errs: make([]error, len(req.Spanners)),
	}
	plan := &Plan{Req: Request{Tenant: req.Tenant}, batch: b}
	defer func() { plan.warm() }()
	seen := make(map[string]int, len(req.Spanners)) // formula -> first slot
	for i, src := range req.Spanners {
		if j, ok := seen[src]; ok {
			b.slot[i], b.errs[i] = b.slot[j], b.errs[j]
			continue
		}
		seen[src] = i
		a, err := compileBatchMember(src)
		if err != nil {
			b.slot[i], b.errs[i] = -1, err
			continue
		}
		b.slot[i] = len(b.members)
		b.members = append(b.members, a)
	}
	if len(b.members) > 0 {
		b.multi = vsa.NewMulti(b.members...)
	}
	plan.CompileTime = time.Since(t0)
	return plan, nil
}

// compileBatchMember compiles one member formula under a panic guard:
// compilation can panic on hostile input (e.g. more variables than
// vsa.MaxVars), and inside a batch that must fail the one slot, not the
// whole batch (the cache's runBuild guard would do the latter).
func compileBatchMember(src string) (a *vsa.Automaton, err error) {
	defer func() {
		if r := recover(); r != nil {
			a, err = nil, fmt.Errorf("engine: spanner: compilation failed: %v", r)
		}
	}()
	if src == "" {
		return nil, errors.New("engine: empty spanner formula")
	}
	a, err = regexformula.Compile(src)
	if err != nil {
		return nil, fmt.Errorf("engine: spanner: %w", err)
	}
	return a, nil
}

// PlanBatch returns the compiled fused plan for the batch request,
// serving it from the same plan cache as single plans (same LRU, byte
// budgets and tenant quotas; the "batch:" key prefix keeps fused and
// singleton entries disjoint). hit reports whether compilation was
// skipped. Per-member compile errors do not fail the batch: they are
// memoized inside the returned plan (BatchErr) so one bad formula yields
// one bad slot, cached like everything else.
func (e *Engine) PlanBatch(ctx context.Context, req BatchRequest) (plan *Plan, hit bool, err error) {
	if err := ctx.Err(); err != nil {
		return nil, false, wrapCtxErr(err)
	}
	t0 := time.Now()
	defer func() {
		e.m.observeStage(StagePlan, time.Since(t0))
		err = wrapCtxErr(err)
	}()
	return e.cache.get(ctx, req.Tenant, req.key(), func() (*Plan, error) {
		p, err := compileBatchPlan(req)
		if err != nil {
			return nil, err
		}
		// Attach the engine's counters exactly as Plan does for single
		// plans: members report into the shared evaluation metrics, the
		// fused evaluator into the multi-query series.
		for _, a := range p.batch.members {
			a.SetEvalMetrics(&e.m.eval)
		}
		if p.batch.multi != nil {
			p.batch.multi.SetMetrics(&e.m.multi)
		}
		return p, nil
	})
}

// BatchResult is one member query's outcome in an ExtractBatch: its
// relation (sorted, deduplicated, byte-identical to Extract of that
// formula alone on the same document) or its memoized compile error.
// Slots holding duplicate formulas share one *span.Relation.
type BatchResult struct {
	Rel *span.Relation
	Err error
}

// ExtractBatch evaluates a fused batch plan on an in-memory document:
// one shared pass (vsa.Multi on the work-stealing executor) answers
// every compiled member, demultiplexed into one result per request slot.
// Document-level failures (size cap, deadline) are returned as the
// second value and apply to the whole batch; per-member compile errors
// ride in their slots. Like Extract, a deadline firing mid-evaluation
// returns the partial per-slot relations together with the typed error.
func (e *Engine) ExtractBatch(ctx context.Context, plan *Plan, doc string) ([]BatchResult, error) {
	b := plan.batch
	if b == nil {
		return nil, errors.New("engine: ExtractBatch requires a batch plan (see PlanBatch)")
	}
	if e.cfg.MaxDocBuffer > 0 && int64(len(doc)) > e.cfg.MaxDocBuffer {
		return nil, fmt.Errorf("%w (%d bytes > %d)", ErrDocTooLarge, len(doc), e.cfg.MaxDocBuffer)
	}
	out := make([]BatchResult, len(b.slot))
	for i, s := range b.slot {
		if s < 0 {
			out[i].Err = b.errs[i]
		}
	}
	e.m.documents.Inc()
	e.m.bytes.Add(uint64(len(doc)))
	if b.multi == nil { // every formula failed: nothing to evaluate
		return out, nil
	}
	if err := ctx.Err(); err != nil {
		return out, wrapCtxErr(err)
	}
	t0 := time.Now()
	whole := []parallel.Segment{{Span: span.Span{Start: 1, End: len(doc) + 1}, Text: doc}}
	rels, err := parallel.MultiEvalCtx(ctx, b.multi, whole, e.evalOpts())
	e.m.observeStage(StageEval, time.Since(t0))
	for i, s := range b.slot {
		if s >= 0 {
			out[i].Rel = rels[s]
		}
	}
	return out, wrapCtxErr(err)
}
