package core

import (
	"fmt"

	"repro/internal/span"
	"repro/internal/vsa"
)

// Compose builds an automaton for the spanner P_S ∘ S of Section 3: on
// every document, evaluate ps on each substring selected by s and shift
// the results. This is the polynomial-time construction of Lemma C.2
// (algebraically, π_{SVars(P_S)}((Σ*·x{P_S}·Σ*) ⋈ S)), realized directly
// on extended automata with three phases — before the selected split,
// inside it (a product of s and ps), and after it. The construction is
// also Lemma 6.1 when ps is itself unary (composition of splitters).
func Compose(ps *vsa.Automaton, s *Splitter) *vsa.Automaton {
	if err := ps.Validate(); err != nil {
		panic(fmt.Sprintf("core: Compose: invalid split-spanner: %v", err))
	}
	sa := s.auto
	out := vsa.NewAutomaton(ps.Vars...)

	// State interning: phase 1 and 3 hold a splitter state, phase 2 a
	// (splitter, split-spanner) pair.
	type key struct {
		phase  int
		qs, qp int
	}
	id := map[key]int{}
	var queue []key
	intern := func(k key) int {
		if i, ok := id[k]; ok {
			return i
		}
		var i int
		if len(id) == 0 {
			i = 0
		} else {
			i = out.AddState()
		}
		id[k] = i
		queue = append(queue, k)
		return i
	}
	intern(key{1, sa.Start, -1})
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		from := id[k]
		switch k.phase {
		case 1: // before the split
			for _, e := range sa.States[k.qs].Edges {
				switch splitOpKind(e.Ops) {
				case sNone:
					out.AddEdge(from, 0, e.Class, intern(key{1, e.To, -1}))
				case sOpen:
					// The split starts here; ps consumes the same byte.
					for _, f := range ps.States[ps.Start].Edges {
						cls := e.Class.Intersect(f.Class)
						if cls.IsEmpty() {
							continue
						}
						out.AddEdge(from, f.Ops, cls, intern(key{2, e.To, f.To}))
					}
				case sWrap:
					// An empty split at this boundary; ps must accept ε.
					for _, f0 := range ps.States[ps.Start].Finals {
						out.AddEdge(from, f0, e.Class, intern(key{3, e.To, -1}))
					}
				}
			}
			for _, fin := range sa.States[k.qs].Finals {
				if splitOpKind(fin) == sWrap {
					// Empty split at the end of the document.
					for _, f0 := range ps.States[ps.Start].Finals {
						out.AddFinal(from, f0)
					}
				}
			}
		case 2: // inside the split
			for _, e := range sa.States[k.qs].Edges {
				switch splitOpKind(e.Ops) {
				case sNone:
					for _, f := range ps.States[k.qp].Edges {
						cls := e.Class.Intersect(f.Class)
						if cls.IsEmpty() {
							continue
						}
						out.AddEdge(from, f.Ops, cls, intern(key{2, e.To, f.To}))
					}
				case sClose:
					// The split ends at this boundary: ps must accept, and
					// its final operations fire here; the consumed byte is
					// the first one after the split.
					for _, f0 := range ps.States[k.qp].Finals {
						out.AddEdge(from, f0, e.Class, intern(key{3, e.To, -1}))
					}
				}
			}
			for _, fin := range sa.States[k.qs].Finals {
				if splitOpKind(fin) == sClose {
					// Split ends exactly at the end of the document.
					for _, f0 := range ps.States[k.qp].Finals {
						out.AddFinal(from, f0)
					}
				}
			}
		case 3: // after the split
			for _, e := range sa.States[k.qs].Edges {
				if splitOpKind(e.Ops) == sNone {
					out.AddEdge(from, 0, e.Class, intern(key{3, e.To, -1}))
				}
			}
			for _, fin := range sa.States[k.qs].Finals {
				if splitOpKind(fin) == sNone {
					out.AddFinal(from, 0)
				}
			}
		}
	}
	out.MergeEdges()
	return out
}

// ComposeBrute evaluates (ps ∘ s)(doc) by the definition in Section 3:
// the union over all splits of the shifted evaluation of ps on each
// segment. It is the executable specification against which Compose is
// verified.
func ComposeBrute(ps *vsa.Automaton, s *Splitter, doc string) *span.Relation {
	out := span.NewRelation(ps.Vars...)
	for _, sp := range s.Split(doc) {
		seg := sp.In(doc)
		for _, t := range ps.Eval(seg).Tuples {
			out.Add(t.Shift(sp))
		}
	}
	out.Dedupe()
	return out
}
