package engine

import (
	"container/list"
	"context"
	"fmt"
	"sync"
)

// CacheStats is a snapshot of plan-cache counters. Hits and Coalesced
// both denote requests that did not compile: a hit found a completed
// plan, a coalesced request joined an in-flight compilation of the same
// key (the single-flight path). Misses counts actual compilations,
// including ones that ended in an error (errors are not cached, so a
// later request retries).
type CacheStats struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Coalesced uint64  `json:"coalesced"`
	Evictions uint64  `json:"evictions"`
	Size      int     `json:"size"`
	Cap       int     `json:"cap"`
	HitRate   float64 `json:"hit_rate"`
}

// planCache is an LRU of compiled plans with single-flight deduplication:
// concurrent gets of the same key run the build function exactly once,
// with the late arrivals blocking on the in-flight entry instead of
// re-running the decision procedures.
type planCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      uint64
	misses    uint64
	coalesced uint64
	evictions uint64
}

type cacheEntry struct {
	key   string
	ready chan struct{} // closed when plan/err are set
	done  bool          // guarded by planCache.mu
	plan  *Plan
	err   error
}

func newPlanCache(capacity int) *planCache {
	if capacity < 1 {
		capacity = 1
	}
	return &planCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached plan for key, building it with build on a miss.
// hit reports whether the plan came from the cache (including the
// coalesced single-flight case). Build errors are propagated to every
// waiter but not cached. A coalesced waiter whose own ctx is cancelled
// stops waiting and returns its ctx error; the in-flight build is not
// affected (it still serves the remaining waiters and populates the
// cache).
func (c *planCache) get(ctx context.Context, key string, build func() (*Plan, error)) (plan *Plan, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		if e.done {
			c.hits++
		} else {
			c.coalesced++
		}
		c.mu.Unlock()
		select {
		case <-e.ready:
			return e.plan, true, e.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	el := c.ll.PushFront(e)
	c.items[key] = el
	c.misses++
	if c.ll.Len() > c.cap {
		if old := c.ll.Back(); old != nil && old != el {
			c.ll.Remove(old)
			delete(c.items, old.Value.(*cacheEntry).key)
			c.evictions++
		}
	}
	c.mu.Unlock()

	plan, err = runBuild(build)

	c.mu.Lock()
	e.plan, e.err, e.done = plan, err, true
	if err != nil {
		// Do not cache failures: a later identical request should retry
		// (the failure may be transient, e.g. a cancelled context).
		if cur, ok := c.items[key]; ok && cur.Value.(*cacheEntry) == e {
			c.ll.Remove(cur)
			delete(c.items, key)
		}
	}
	c.mu.Unlock()
	close(e.ready)
	return plan, false, err
}

// runBuild runs build, converting a panic into an error. Compilation can
// panic on hostile input (e.g. a formula with more variables than
// vsa.MaxVars); if the panic escaped here the in-flight cache entry would
// keep its ready channel open forever and every later request for the
// same key would block on it — one bad request permanently poisoning a
// cache key. As an error it takes the normal not-cached path instead.
func runBuild(build func() (*Plan, error)) (plan *Plan, err error) {
	defer func() {
		if r := recover(); r != nil {
			plan, err = nil, fmt.Errorf("engine: plan compilation failed: %v", r)
		}
	}()
	return build()
}

// stats snapshots the counters.
func (c *planCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Coalesced: c.coalesced,
		Evictions: c.evictions,
		Size:      c.ll.Len(),
		Cap:       c.cap,
	}
	if total := s.Hits + s.Coalesced + s.Misses; total > 0 {
		s.HitRate = float64(s.Hits+s.Coalesced) / float64(total)
	}
	return s
}
