package library

import (
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/span"
	"repro/internal/vsa"
)

func TestSentencesSplitter(t *testing.T) {
	s := Sentences()
	doc := "ab.cd!e"
	got := s.Split(doc)
	want := []span.Span{span.New(1, 3), span.New(4, 6), span.New(7, 8)}
	if len(got) != len(want) {
		t.Fatalf("Split = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Split = %v, want %v", got, want)
		}
	}
	if !s.IsDisjoint() {
		t.Fatal("sentence splitter must be disjoint")
	}
}

func TestFastSentenceSplitAgreesWithAutomaton(t *testing.T) {
	s := Sentences()
	for _, doc := range []string{"", "a", "a.b", "ab.cd!e?", "..", "x.y.z"} {
		a := s.Split(doc)
		b := FastSentenceSplit(doc)
		if len(a) != len(b) {
			t.Fatalf("on %q: automaton %v vs scanner %v", doc, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("on %q: automaton %v vs scanner %v", doc, a, b)
			}
		}
	}
	// And on a realistic corpus sample.
	doc := corpus.Wikipedia(7, 400)
	a := s.Split(doc)
	b := FastSentenceSplit(doc)
	if len(a) != len(b) {
		t.Fatalf("corpus: %d vs %d sentences", len(a), len(b))
	}
}

func TestParagraphsAndTokens(t *testing.T) {
	p := Paragraphs()
	got := p.Split("ab\ncd")
	if len(got) != 2 || got[0] != span.New(1, 3) || got[1] != span.New(4, 6) {
		t.Fatalf("Paragraphs = %v", got)
	}
	if !p.IsDisjoint() {
		t.Fatal("paragraph splitter must be disjoint")
	}
	tok := Tokens()
	got = tok.Split("ab c  d")
	want := []span.Span{span.New(1, 3), span.New(4, 5), span.New(7, 8)}
	if len(got) != len(want) {
		t.Fatalf("Tokens = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Tokens = %v, want %v", got, want)
		}
	}
	if !tok.IsDisjoint() {
		t.Fatal("token splitter must be disjoint")
	}
}

func TestNGrams(t *testing.T) {
	for n := 1; n <= 3; n++ {
		s := NGrams(n)
		doc := "aa b ccc dd"
		got := s.Split(doc)
		want := FastNGramSplit(doc, n)
		if len(got) != len(want) {
			t.Fatalf("N=%d: automaton %v vs scanner %v", n, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("N=%d: automaton %v vs scanner %v", n, got, want)
			}
		}
		if n == 1 && !s.IsDisjoint() {
			t.Fatal("1-grams must be disjoint")
		}
		if n > 1 && s.IsDisjoint() {
			t.Fatalf("%d-grams must not be disjoint", n)
		}
	}
}

func TestHTTPRequestsSplitter(t *testing.T) {
	s := HTTPRequests()
	doc := "get /a;post /b;get /c"
	got := s.Split(doc)
	if len(got) != 3 {
		t.Fatalf("HTTPRequests = %v", got)
	}
	fast := FastBlockSplit(doc)
	for i := range got {
		if got[i] != fast[i] {
			t.Fatalf("scanner disagrees: %v vs %v", got, fast)
		}
	}
	if !s.IsDisjoint() {
		t.Fatal("request splitter must be disjoint")
	}
}

func TestExtractors(t *testing.T) {
	emails := Emails()
	rel := emails.Eval("write to bob@example now")
	if rel.Len() != 1 || rel.Tuples[0][0].In("write to bob@example now") != "bob@example" {
		t.Fatalf("Emails = %v", rel)
	}
	phones := Phones()
	rel = phones.Eval("call 555-1234 now")
	if rel.Len() != 1 || rel.Tuples[0][0].In("call 555-1234 now") != "555-1234" {
		t.Fatalf("Phones = %v", rel)
	}
	names := Names()
	rel = names.Eval("so Alice met Bob")
	if rel.Len() != 2 {
		t.Fatalf("Names = %v", rel)
	}
	fin := FinanceEvents()
	doc := "yesterday Acme paid Globex twice"
	rel = fin.Eval(doc)
	if rel.Len() != 1 {
		t.Fatalf("FinanceEvents = %v", rel)
	}
	payer, _ := rel.Project([]string{"payer"})
	if payer.Tuples[0][0].In(doc) != "Acme" {
		t.Fatalf("payer = %v", payer)
	}
	neg := NegativeSentiment()
	doc = "really bad coffee today"
	rel = neg.Eval(doc)
	if rel.Len() != 1 || rel.Tuples[0][0].In(doc) != "coffee" {
		t.Fatalf("NegativeSentiment = %v", rel)
	}
}

// TestExtractorsSelfSplittableBySentences verifies the library's central
// promise (the paper's motivation): the sentence-local extractors are
// provably self-splittable by the sentence splitter, so split-parallel
// evaluation is safe.
func TestExtractorsSelfSplittableBySentences(t *testing.T) {
	s := Sentences()
	for name, p := range map[string]*vsa.Automaton{
		"finance":  FinanceEvents(),
		"negative": NegativeSentiment(),
		"names":    Names(),
	} {
		ok, err := core.SelfSplittable(p, s, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !ok {
			t.Fatalf("%s extractor must be self-splittable by sentences", name)
		}
	}
}
